(* The paper's Anagram benchmark as a real program.

   The paper's most collection-intensive benchmark is an IBM-internal
   anagram generator: "a simple, recursive routine to generate all
   permutations of the characters in the input string", checking each
   permuted word against a dictionary — "creating and freeing many
   strings".  This example is that program, written against the simulated
   heap: the dictionary is a heap hash table of heap strings (the resident
   old generation), every candidate permutation is a freshly allocated
   heap string that dies as soon as it has been looked up (the young
   churn).

   It runs the same computation under the generational collector and the
   non-generational baseline and reports the improvement — an application
   measurement, independent of the synthetic profile used by the figure
   harness.

   Run with:  dune exec examples/anagram_app.exe *)

open Otfgc
open Otfgc_structs
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng
module R = Otfgc_metrics.Run_result

let dictionary_words = 3000
let phrases =
  [
    "tangles"; "rescued"; "dearths"; "parsley"; "altered"; "strange";
    "pedants"; "claimed"; "showier"; "plaster"; "cratered"; "mangiest";
  ]

(* Deterministic pseudo-dictionary: random short words, plus a handful of
   true anagrams of each phrase so the search finds something. *)
let make_dictionary rng =
  let word () =
    let len = 3 + Rng.int rng 5 in
    String.init len (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 20))
  in
  let shuffled s =
    let a = Array.init (String.length s) (String.get s) in
    Rng.shuffle rng a;
    String.init (Array.length a) (Array.get a)
  in
  List.init dictionary_words (fun _ -> word ())
  @ List.concat_map (fun p -> List.init 4 (fun _ -> shuffled p)) phrases

(* Generate all permutations of [chars], allocating each candidate as a
   heap string and probing the dictionary.  The recursion mirrors the
   paper's description; the OCaml char array is the program's "local
   variables", every candidate string lives on the simulated heap. *)
let permute_and_search rt m ~table chars =
  let hits = ref 0 and tried = ref 0 in
  let n = Array.length chars in
  let swap i j =
    let t = chars.(i) in
    chars.(i) <- chars.(j);
    chars.(j) <- t
  in
  let rec go k =
    if k = n then begin
      incr tried;
      let candidate = Hstring.alloc rt m (String.init n (Array.get chars)) in
      Mutator.push m candidate;
      if Htable.mem rt m ~table ~key:candidate then incr hits;
      ignore (Mutator.pop m : int)
      (* candidate dropped: young garbage *)
    end
    else
      for i = k to n - 1 do
        swap k i;
        go (k + 1);
        swap k i
      done
  in
  go 0;
  (!hits, !tried)

let run_once ~gc ~label =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 1 lsl 20; max_bytes = 4 lsl 20; card_size = 16 }
      ~gc_config:gc ()
  in
  Runtime.set_fine_grained rt false;
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 99)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"anagram" () in
  let found = ref 0 and total = ref 0 in
  ignore
    (Sched.spawn sched ~name:"anagram" (fun () ->
         (* the dictionary: resident data the collector should not retrace *)
         let table = Htable.create rt m ~buckets:499 in
         Mutator.set_reg m 0 table;
         let rng = Rng.make 7 in
         List.iter
           (fun w ->
             let key = Hstring.alloc rt m w in
             Mutator.push m key;
             Htable.add rt m ~table ~key ~value:Heap.nil;
             ignore (Mutator.pop m : int))
           (make_dictionary rng);
         (* warmup: promote the dictionary to the old generation so the
            measurement sees steady state, as a benchmark harness would *)
         ignore (Runtime.collect_and_wait rt m ~full:true);
         Otfgc.Gc_stats.reset (Runtime.stats rt);
         Otfgc.Cost.reset (Runtime.cost rt);
         (* the search *)
         List.iter
           (fun phrase ->
             let hits, tried =
               permute_and_search rt m ~table
                 (Array.init (String.length phrase) (String.get phrase))
             in
             found := !found + hits;
             total := !total + tried)
           phrases;
         Runtime.retire_mutator rt m));
  Sched.run sched;
  let r = R.of_runtime ~workload:("anagram-app/" ^ label) rt in
  Printf.printf
    "%-16s %d/%d anagrams found; %d partial + %d full + %d non-gen \
     collections; GC active %.1f%%\n"
    label !found !total r.R.n_partial r.R.n_full r.R.n_non_gen r.R.pct_time_gc;
  r

let () =
  print_endline "Anagram, the real program, on the simulated heap:\n";
  let gen =
    run_once ~gc:(Gc_config.generational ~young_bytes:(256 * 1024) ()) ~label:"generational"
  in
  let base = run_once ~gc:Gc_config.non_generational ~label:"non-generational" in
  Printf.printf "\ngenerational improvement: %.1f%%\n"
    (R.improvement_pct ~baseline:base gen ~multiprocessor:true)
