(* Heapscope: watch the generational heap evolve.

   Runs a small allocation-heavy program, prints an ASCII heap map at
   interesting moments (fresh heap, after young churn, after a partial
   collection, after dropping the long-lived data, after a full
   collection) and finishes with the collector's phase-event timeline —
   the observability surface a production collector would expose.

   Run with:  dune exec examples/heapscope.exe *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Heap_render = Otfgc_heap.Heap_render
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let show heap label =
  Printf.printf "--- %s ---\n%s\n" label (Heap_render.ascii ~width:64 ~rows:8 heap)

let () =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 256 * 1024; max_bytes = 1024 * 1024; card_size = 16 }
      ~gc_config:(Gc_config.generational ~young_bytes:(64 * 1024) ())
      ()
  in
  let st = Runtime.state rt in
  Event_log.set_enabled st.State.events true;
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 5)) () in
  ignore (Runtime.spawn_collector rt sched);
  let m = Runtime.new_mutator rt ~name:"main" () in
  ignore
    (Sched.spawn sched ~name:"main" (fun () ->
         let heap = Runtime.heap rt in
         show heap "fresh heap";

         (* build a long-lived list (the future old generation) *)
         for _ = 1 to 1500 do
           let node = Runtime.alloc rt m ~size:48 ~n_slots:2 in
           Mutator.set_reg m 1 node;
           let head = Mutator.get_reg m 0 in
           if head <> Heap.nil then Runtime.store rt m ~x:node ~i:0 ~y:head;
           Mutator.set_reg m 0 node;
           Mutator.clear_reg m 1
         done;
         show heap "after building 1500 long-lived nodes (all still young)";

         ignore (Runtime.collect_and_wait rt m ~full:false);
         show heap "after a partial collection (survivors promoted to old/B)";

         (* young churn: garbage that the next partial reclaims *)
         for _ = 1 to 4000 do
           ignore (Runtime.alloc rt m ~size:32 ~n_slots:0)
         done;
         show heap "after 4000 short-lived allocations (young churn, o)";

         ignore (Runtime.collect_and_wait rt m ~full:false);
         show heap "after the next partial (young garbage swept, old intact)";

         (* drop the long-lived list: old garbage only a full can reclaim *)
         Mutator.clear_reg m 0;
         ignore (Runtime.collect_and_wait rt m ~full:false);
         show heap "after dropping the list + a partial (old garbage remains)";

         ignore (Runtime.collect_and_wait rt m ~full:true);
         show heap "after a full collection (old generation reclaimed)";

         Runtime.retire_mutator rt m));
  Sched.run sched;

  print_endline "--- collector phase timeline (elapsed work units) ---";
  Format.printf "%a@?" Event_log.pp_timeline st.State.events
