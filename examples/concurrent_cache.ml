(* A server-style scenario: several worker threads serve "requests" against
   a shared long-lived cache.  Requests allocate short-lived objects (they
   die young); the cache holds a substantial resident set whose entries
   live until evicted (they get promoted, then die in the old generation) —
   exactly the generational behaviour the paper's collector targets: the
   non-generational baseline must re-trace the whole resident cache on
   every collection, while partial collections skip it.

   The example runs the same workload under the generational collector and
   the non-generational DLG baseline and prints the comparison.

   Run with:  dune exec examples/concurrent_cache.exe *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng
module R = Otfgc_metrics.Run_result

let n_workers = 2
let requests_per_worker = 30_000
let cache_slots = 7 (* entry slots per cache node *)
let cache_nodes = 4000 (* resident set: 3000 nodes * 7 entries *)

(* Worker registers: 0 = shared cache spine head, 1 = request scratch,
   2 = this worker's cursor into the cache spine. *)
let worker rt m rng cache_head () =
  Mutator.set_reg m 0 cache_head;
  Mutator.set_reg m 2 cache_head;
  for _ = 1 to requests_per_worker do
    (* the request: a small graph of short-lived objects *)
    let req = Runtime.alloc rt m ~size:48 ~n_slots:3 in
    Mutator.set_reg m 1 req;
    let payload = Runtime.alloc rt m ~size:32 ~n_slots:0 in
    Runtime.store rt m ~x:req ~i:0 ~y:payload;
    (* 30% of requests install their payload into the cache, evicting
       whatever occupied the slot (an old-generation pointer store) *)
    if Rng.chance rng 0.3 then begin
      (* advance this worker's cursor a few nodes, wrapping at the tail *)
      for _ = 1 to 1 + Rng.int rng 8 do
        let next = Runtime.load rt m ~x:(Mutator.get_reg m 2) ~i:0 in
        Mutator.set_reg m 2 (if next = Heap.nil then Mutator.get_reg m 0 else next)
      done;
      let slot = 1 + Rng.int rng cache_slots in
      Runtime.store rt m ~x:(Mutator.get_reg m 2) ~i:slot ~y:payload
    end;
    (* request served: drop it *)
    Mutator.clear_reg m 1;
    Runtime.work rt m 400
  done;
  Runtime.retire_mutator rt m

let build_cache rt m =
  (* a linked spine of cache nodes, reachable from a global root *)
  let head = ref Heap.nil in
  for _ = 1 to cache_nodes do
    let node =
      Runtime.alloc rt m ~size:(16 + (8 * (cache_slots + 1))) ~n_slots:(cache_slots + 1)
    in
    Mutator.set_reg m 1 node;
    if !head <> Heap.nil then Runtime.store rt m ~x:node ~i:0 ~y:!head;
    Mutator.set_reg m 0 node;
    Mutator.clear_reg m 1;
    head := node
  done;
  Runtime.add_global rt !head;
  !head

let run_once ~gc ~label =
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 1 lsl 20; max_bytes = 4 lsl 20; card_size = 16 }
      ~gc_config:gc ()
  in
  Runtime.set_fine_grained rt false;
  let master = Rng.make 7 in
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.split master)) () in
  ignore (Runtime.spawn_collector rt sched);
  (* the builder thread sets up the cache, then workers start *)
  let cache = ref Heap.nil in
  let builder = Runtime.new_mutator rt ~name:"builder" () in
  ignore
    (Sched.spawn sched ~name:"builder" (fun () ->
         cache := build_cache rt builder;
         Runtime.retire_mutator rt builder));
  for i = 1 to n_workers do
    let m = Runtime.new_mutator rt ~name:(Printf.sprintf "worker%d" i) () in
    let rng = Rng.split master in
    ignore
      (Sched.spawn sched ~name:(Printf.sprintf "worker%d" i) (fun () ->
           Sched.wait_until (fun () ->
               Runtime.cooperate rt m;
               !cache <> Heap.nil);
           worker rt m rng !cache ()))
  done;
  Sched.run sched;
  let r = R.of_runtime ~workload:("cache/" ^ label) rt in
  Format.printf "=== %s ===@.%a@.@." label R.pp r;
  r

let () =
  let gen =
    run_once ~gc:(Gc_config.generational ~young_bytes:(256 * 1024) ()) ~label:"generational"
  in
  let base = run_once ~gc:Gc_config.non_generational ~label:"non-generational" in
  Format.printf "generational collector improvement: %.1f%%@."
    (R.improvement_pct ~baseline:base gen ~multiprocessor:true)
