(* Quickstart: the smallest complete program against the public API.

   One mutator thread builds a linked list on the simulated heap, drops
   half of it, and asks the on-the-fly collector (running concurrently as
   its own scheduled process) to reclaim the garbage.

   Run with:  dune exec examples/quickstart.exe *)

open Otfgc
module Heap = Otfgc_heap.Heap
module Sched = Otfgc_sched.Sched
module Rng = Otfgc_support.Rng

let () =
  (* A 1 MB heap that may grow to 4 MB, 16-byte cards ("object marking"),
     and the paper's generational collector with a 512 KB young
     generation. *)
  let rt =
    Runtime.create
      ~heap_config:{ Heap.initial_bytes = 1 lsl 20; max_bytes = 4 lsl 20; card_size = 16 }
      ~gc_config:(Gc_config.generational ~young_bytes:(128 * 1024) ())
      ()
  in
  (* Mutators and the collector are cooperative processes on a
     deterministic scheduler: same seed, same run, every time. *)
  let sched = Sched.create ~policy:(Sched.random_policy (Rng.make 2026)) () in
  ignore (Runtime.spawn_collector rt sched);

  let m = Runtime.new_mutator rt ~name:"main" () in
  ignore
    (Sched.spawn sched ~name:"main" (fun () ->
         (* Build a 10_000-node list.  Register 0 holds the list head; the
            rooting contract says every reference that must survive a
            scheduling point lives in a register or stack slot. *)
         for i = 1 to 10_000 do
           let node = Runtime.alloc rt m ~size:32 ~n_slots:2 in
           Mutator.set_reg m 1 node;
           let head = Mutator.get_reg m 0 in
           if head <> Heap.nil then Runtime.store rt m ~x:node ~i:0 ~y:head;
           Mutator.set_reg m 0 node;
           Mutator.clear_reg m 1;
           (* every 1000 nodes, drop the whole list: instant garbage *)
           if i mod 1000 = 0 then Mutator.clear_reg m 0
         done;
         (* Explicitly request a full collection (the System.gc() analogue)
            and wait for it while cooperating with its handshakes. *)
         let cycle = Runtime.collect_and_wait rt m ~full:true in
         Printf.printf "final full collection freed %d objects (%d bytes)\n"
           cycle.Gc_stats.objects_freed cycle.Gc_stats.bytes_freed;
         Runtime.retire_mutator rt m));

  Sched.run sched;

  let stats = Runtime.stats rt in
  Printf.printf "collections: %d partial, %d full\n"
    (Gc_stats.count stats Gc_stats.Partial)
    (Gc_stats.count stats Gc_stats.Full);
  Printf.printf "heap: %d objects live, %d bytes capacity\n"
    (Heap.object_count (Runtime.heap rt))
    (Heap.capacity (Runtime.heap rt));
  Printf.printf "total allocated: %d objects\n"
    (Heap.total_allocated_objects (Runtime.heap rt))
