(* The paper's motivating multithreaded workload: render threads over a
   shared scene, almost all allocation dying young (Section 8.2).  This
   example sweeps the thread count and prints the improvement of the
   generational collector over the non-generational baseline — a miniature
   of the paper's Figure 7.

   Run with:  dune exec examples/raytracer.exe [-- scale]  *)

open Otfgc
open Otfgc_workloads
module R = Otfgc_metrics.Run_result

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.4
  in
  Printf.printf
    "multithreaded Ray Tracer: generational vs non-generational (scale %.2f)\n\n"
    scale;
  Printf.printf "%8s  %12s  %10s  %10s\n" "threads" "improvement" "GC% gen"
    "GC% base";
  List.iter
    (fun threads ->
      let profile = Profile.raytracer ~threads in
      let gen, base =
        Driver.run_pair ~scale ~gc:(Gc_config.generational ()) profile
      in
      Printf.printf "%8d  %11.1f%%  %9.1f%%  %9.1f%%\n%!" threads
        (R.improvement_pct ~baseline:base gen ~multiprocessor:true)
        gen.R.pct_time_gc base.R.pct_time_gc)
    [ 2; 4; 6; 8; 10 ]
